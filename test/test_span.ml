(* Tests for the telemetry layer: the causal span profiler (nesting
   discipline on real runs, ring wraparound accounting, exception
   safety, monotone clocks, folded-stack self-time arithmetic, the
   Chrome and JSONL codecs), the flight recorder (dump/load round-trip,
   truncation tolerance, story rendering), and the sliding-window
   metrics view (per-window deltas must reconcile exactly with the
   final counters). *)

open Fdlsp_graph
open Fdlsp_sim
open Fdlsp_core

let rng = Generators.rng [| 0x59A2; 3 |]

(* A deterministic clock: pops the next value, repeats the last one
   when exhausted.  [Span.recorder] reads it once at creation. *)
let fake_clock xs =
  let q = ref xs in
  fun () ->
    match !q with
    | [] -> 0.
    | [ x ] -> x
    | x :: rest ->
        q := rest;
        x

(* ------------------------------------------------------------------ *)
(* Sink semantics                                                      *)
(* ------------------------------------------------------------------ *)

let test_null_sink () =
  Alcotest.(check bool) "disabled" false (Span.enabled Span.null);
  Alcotest.(check int) "transparent" 41 (Span.span Span.null "x" (fun () -> 41));
  Span.mark Span.null "m";
  Alcotest.(check int) "nothing seen" 0 (Span.seen Span.null);
  Alcotest.(check int) "no entries" 0 (Array.length (Span.entries Span.null));
  Alcotest.(check int) "no depth" 0 (Span.depth Span.null)

let test_exception_safety () =
  let s = Span.recorder () in
  (try Span.span s "outer" (fun () -> Span.span s "inner" (fun () -> failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check int) "both spans closed" 0 (Span.depth s);
  Alcotest.(check int) "4 entries" 4 (Array.length (Span.entries s));
  match Span.check_nesting ~require_closed:true (Span.entries s) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "nesting after raise: %s" m

let test_monotone_clamp () =
  (* the wall clock steps backwards; recorded timestamps must not *)
  let s = Span.recorder ~clock:(fake_clock [ 5.; 10.; 3.; 7.; 2. ]) () in
  Span.span s "a" (fun () -> Span.mark s "m");
  let ts = Array.map (function
      | Span.Begin b -> b.t
      | Span.End_ e -> e.t
      | Span.Mark m -> m.t)
      (Span.entries s)
  in
  Array.iteri
    (fun i t -> if i > 0 then Alcotest.(check bool) "non-decreasing" true (t >= ts.(i - 1)))
    ts;
  match Span.check_nesting ~require_closed:true (Span.entries s) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "nesting under clock regression: %s" m

let test_ring_overwrite () =
  let cap = 8 in
  let s = Span.recorder ~capacity:cap () in
  for _ = 1 to 50 do
    Span.span s "w" (fun () -> ())
  done;
  Alcotest.(check int) "seen everything" 100 (Span.seen s);
  Alcotest.(check int) "ring bounded" cap (Array.length (Span.entries s));
  Alcotest.(check int) "overwritten = seen - kept" (100 - cap) (Span.overwritten s);
  (* the surviving suffix is balanced begin/end pairs of a leaf span,
     so even the wrapped window still nests *)
  match Span.check_nesting (Span.entries s) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "wrapped window: %s" m

let test_capacity_validated () =
  Alcotest.check_raises "capacity 1 rejected"
    (Invalid_argument "Span.recorder: capacity must be >= 2") (fun () ->
      ignore (Span.recorder ~capacity:1 ()))

(* ------------------------------------------------------------------ *)
(* Exports                                                             *)
(* ------------------------------------------------------------------ *)

let test_folded_self_time () =
  (* outer [10us..30us] with a child [20us..24us]: outer self = 16us,
     child self = 4us — self time is total minus children *)
  let us x = x *. 1e-6 in
  let s =
    Span.recorder
      ~clock:(fake_clock [ us 0.; us 10.; us 20.; us 24.; us 30. ])
      ()
  in
  Span.span s "outer" (fun () -> Span.span s "inner" (fun () -> ()));
  Alcotest.(check string) "folded lines" "outer 16\nouter;inner 4\n"
    (Span.to_folded (Span.entries s))

let test_folded_skips_lost_begins () =
  let s = Span.recorder ~capacity:3 () in
  (* the outer Begin is overwritten by the leaf churn; its End_ must be
     skipped, not crash or attribute garbage *)
  Span.span s "outer" (fun () ->
      for _ = 1 to 5 do
        Span.span s "leaf" (fun () -> ())
      done);
  ignore (Span.to_folded (Span.entries s))

let test_chrome_parses_and_balances () =
  let s = Span.recorder () in
  Span.span s "a" (fun () ->
      Span.span s "b" (fun () -> Span.mark s "ev" ~args:[ ("k", "v") ]));
  let json = Span.to_chrome (Span.entries s) in
  match Trace.Json.member "traceEvents" (Trace.Json.parse json) with
  | Some (Trace.Json.Arr evs) ->
      Alcotest.(check int) "one object per entry" 5 (List.length evs);
      let count ph =
        List.length
          (List.filter
             (fun e -> Trace.Json.member "ph" e = Some (Trace.Json.Str ph))
             evs)
      in
      Alcotest.(check int) "begins balance ends" (count "B") (count "E");
      Alcotest.(check int) "one instant" 1 (count "i");
      List.iter
        (fun e ->
          match Trace.Json.member "ts" e with
          | Some (Trace.Json.Num ts) ->
              Alcotest.(check bool) "ts is relative usec" true (ts >= 0.)
          | _ -> Alcotest.fail "missing ts")
        evs
  | _ -> Alcotest.fail "no traceEvents array"

let test_entry_json_roundtrip () =
  let nasty = "a\"b\\c\nd\te" in
  let s = Span.recorder () in
  Span.span s nasty (fun () -> Span.mark s "mark" ~args:[ (nasty, nasty); ("k", "") ]);
  Array.iter
    (fun e ->
      let line = Span.entry_to_json e in
      let e' = Span.entry_of_json line in
      (* timestamps travel through %.9f: compare to that precision *)
      let norm = function
        | Span.Begin b -> Span.Begin { b with t = 0. }
        | Span.End_ en -> Span.End_ { en with t = 0. }
        | Span.Mark m -> Span.Mark { m with t = 0. }
      in
      Alcotest.(check bool) "fields round-trip" true (norm e = norm e');
      let t = function Span.Begin b -> b.t | Span.End_ x -> x.t | Span.Mark m -> m.t in
      Alcotest.(check bool) "time round-trips to 1ns" true
        (Float.abs (t e -. t e') < 1e-8))
    (Span.entries s)

(* ------------------------------------------------------------------ *)
(* Real runs nest                                                      *)
(* ------------------------------------------------------------------ *)

let test_distmis_profile_nests () =
  let g = fst (Gen.udg (rng ()) ~n:18 ~side:4. ~radius:1.3) in
  let s = Span.recorder () in
  let (_ : Dist_mis.result) =
    Dist_mis.run ~spans:s ~mis:Mis.Local_min ~variant:Dist_mis.General g
  in
  Alcotest.(check int) "all spans closed" 0 (Span.depth s);
  Alcotest.(check bool) "spans recorded" true (Span.seen s > 4);
  (match Span.check_nesting ~require_closed:true (Span.entries s) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "distmis profile: %s" m);
  let folded = Span.to_folded (Span.entries s) in
  Alcotest.(check bool) "folded mentions the phases" true
    (let has sub =
       let n = String.length folded and k = String.length sub in
       let rec go i = i + k <= n && (String.sub folded i k = sub || go (i + 1)) in
       go 0
     in
     has "distmis;distmis.mis" && has "sync.round")

let test_spans_do_not_perturb_run () =
  let g = fst (Gen.udg (rng ()) ~n:16 ~side:4. ~radius:1.3) in
  let plain = Dfs_sched.run g in
  let s = Span.recorder () in
  let spanned = Dfs_sched.run ~spans:s g in
  Alcotest.(check bool) "same schedule" true
    (Fdlsp_color.Schedule.colors plain.Dfs_sched.schedule
    = Fdlsp_color.Schedule.colors spanned.Dfs_sched.schedule);
  Alcotest.(check bool) "same stats" true (plain.Dfs_sched.stats = spanned.Dfs_sched.stats)

let test_service_spans_nest () =
  let g = Gen.gnm (rng ()) ~n:24 ~m:40 in
  let s = Span.recorder () in
  let svc = Service.create ~spans:s (Dfs_sched.run g).Dfs_sched.schedule in
  List.iter
    (fun b -> ignore (Service.apply svc b))
    (Service.synth svc ~seed:7 ~events:60 ~batch:6);
  (match Span.check_nesting ~require_closed:true (Span.entries s) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "service spans: %s" m);
  let names =
    Array.to_list (Span.entries s)
    |> List.filter_map (function Span.Begin b -> Some b.name | _ -> None)
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true (List.mem expected names))
    [ "service.coalesce"; "service.repair"; "service.rebuild" ]

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let with_temp f =
  let path = Filename.temp_file "fdlsp-flight" ".fdr" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let populated_flight () =
  let fr = Flight.create ~span_capacity:4096 ~health_capacity:4 () in
  let g = fst (Gen.udg (rng ()) ~n:12 ~side:4. ~radius:1.4) in
  let (_ : Dist_mis.result) =
    Dist_mis.run
      ~trace:(Flight.trace fr)
      ~spans:(Flight.spans fr)
      ~mis:Mis.Local_min ~variant:Dist_mis.General g
  in
  Flight.note_health fr {|{"health":1}|};
  Flight.note_health fr {|{"health":2}|};
  fr

let test_flight_roundtrip () =
  with_temp (fun path ->
      let fr = populated_flight () in
      Flight.dump fr ~reason:"unit \"test\"" path;
      let d = Flight.load path in
      Alcotest.(check string) "reason survives quoting" "unit \"test\"" d.Flight.d_reason;
      Alcotest.(check bool) "complete" true d.Flight.d_complete;
      Alcotest.(check int) "all spans kept" (Span.seen (Flight.spans fr))
        (Array.length d.Flight.d_spans + d.Flight.d_spans_overwritten);
      Alcotest.(check (list string)) "health tail kept" [ {|{"health":1}|}; {|{"health":2}|} ]
        d.Flight.d_health;
      Alcotest.(check bool) "trace captured" true (Array.length d.Flight.d_trace > 0);
      Alcotest.(check (list string)) "no open spans at dump" [] d.Flight.d_open;
      (* the story renderer must cope with whatever load returns *)
      let story = Format.asprintf "%a" Flight.pp_story d in
      Alcotest.(check bool) "story mentions reason" true
        (String.length story > 0
        &&
        let has sub =
          let n = String.length story and k = String.length sub in
          let rec go i = i + k <= n && (String.sub story i k = sub || go (i + 1)) in
          go 0
        in
        has "unit \"test\"" && has "span nesting: ok"))

let test_flight_truncation_tolerated () =
  with_temp (fun path ->
      let fr = populated_flight () in
      Flight.dump fr ~reason:"trunc" path;
      let full = In_channel.with_open_bin path In_channel.input_all in
      (* chop the end marker and half the last section off: exactly what
         a crash mid-write would leave if dumps were not atomic *)
      let cut = String.length full * 3 / 4 in
      let oc = open_out path in
      output_string oc (String.sub full 0 cut);
      close_out oc;
      let d = Flight.load path in
      Alcotest.(check bool) "incomplete flagged" false d.Flight.d_complete;
      ignore (Format.asprintf "%a" Flight.pp_story d))

let test_flight_rejects_garbage () =
  with_temp (fun path ->
      let oc = open_out path in
      output_string oc "definitely not a flight dump\n";
      close_out oc;
      match Flight.load path with
      | (_ : Flight.dump) -> Alcotest.fail "garbage accepted"
      | exception Failure _ -> ())

(* ------------------------------------------------------------------ *)
(* Metrics.Window reconciliation                                       *)
(* ------------------------------------------------------------------ *)

let test_window_reconciles () =
  let reg = Metrics.create () in
  let g = Gen.gnm (rng ()) ~n:30 ~m:60 in
  let svc = Service.create ~metrics:(Metrics.sink reg) (Dfs_sched.run g).Dfs_sched.schedule in
  let w = Metrics.Window.start reg in
  let repair = Metrics.Name.service_repair ^ "_seconds" in
  let ev_sum = ref 0 and obs_sum = ref 0 and sec_sum = ref 0. in
  List.iter
    (fun b ->
      ignore (Service.apply svc b);
      ev_sum := !ev_sum + Metrics.Window.counter_delta w Metrics.Name.service_events;
      obs_sum := !obs_sum + Metrics.Window.observations w repair;
      sec_sum := !sec_sum +. Metrics.Window.sum_delta w repair;
      let p99 = Metrics.Window.quantile w repair 0.99 in
      Alcotest.(check bool) "window p99 defined when observed" true
        (Metrics.Window.observations w repair = 0 || not (Float.is_nan p99));
      Metrics.Window.advance w)
    (Service.synth svc ~seed:11 ~events:120 ~batch:8);
  Alcotest.(check int) "event deltas sum to the counter"
    (Metrics.counter_value reg Metrics.Name.service_events)
    !ev_sum;
  (match Metrics.histogram reg repair with
  | Some h ->
      Alcotest.(check int) "observation deltas sum to the count"
        (Metrics.Hist.count h) !obs_sum;
      Alcotest.(check bool) "second deltas sum to the histogram sum" true
        (Float.abs (Metrics.Hist.sum h -. !sec_sum)
        <= 1e-9 *. (1. +. Float.abs (Metrics.Hist.sum h)))
  | None -> Alcotest.fail "repair histogram missing");
  (* a freshly advanced window has seen nothing *)
  Alcotest.(check int) "empty window: no events" 0
    (Metrics.Window.counter_delta w Metrics.Name.service_events);
  Alcotest.(check bool) "empty window: NaN quantile" true
    (Float.is_nan (Metrics.Window.quantile w repair 0.5))

let test_window_unknown_names () =
  let reg = Metrics.create () in
  let w = Metrics.Window.start reg in
  Alcotest.(check int) "unknown counter delta is 0" 0
    (Metrics.Window.counter_delta w "nope_total");
  Alcotest.(check int) "unknown histogram observes 0" 0
    (Metrics.Window.observations w "nope_seconds");
  Alcotest.(check bool) "unknown histogram quantile NaN" true
    (Float.is_nan (Metrics.Window.quantile w "nope_seconds" 0.99))

let () =
  Alcotest.run "fdlsp_span"
    [
      ( "sink",
        [
          Alcotest.test_case "null sink" `Quick test_null_sink;
          Alcotest.test_case "exception safety" `Quick test_exception_safety;
          Alcotest.test_case "monotone clamp" `Quick test_monotone_clamp;
          Alcotest.test_case "ring overwrite" `Quick test_ring_overwrite;
          Alcotest.test_case "capacity validated" `Quick test_capacity_validated;
        ] );
      ( "export",
        [
          Alcotest.test_case "folded self time" `Quick test_folded_self_time;
          Alcotest.test_case "folded skips lost begins" `Quick
            test_folded_skips_lost_begins;
          Alcotest.test_case "chrome parses + balances" `Quick
            test_chrome_parses_and_balances;
          Alcotest.test_case "entry json round-trip" `Quick test_entry_json_roundtrip;
        ] );
      ( "runs",
        [
          Alcotest.test_case "distmis profile nests" `Quick test_distmis_profile_nests;
          Alcotest.test_case "spans do not perturb the run" `Quick
            test_spans_do_not_perturb_run;
          Alcotest.test_case "service spans nest" `Quick test_service_spans_nest;
        ] );
      ( "flight",
        [
          Alcotest.test_case "dump/load round-trip" `Quick test_flight_roundtrip;
          Alcotest.test_case "truncation tolerated" `Quick
            test_flight_truncation_tolerated;
          Alcotest.test_case "garbage rejected" `Quick test_flight_rejects_garbage;
        ] );
      ( "window",
        [
          Alcotest.test_case "deltas reconcile with counters" `Quick
            test_window_reconciles;
          Alcotest.test_case "unknown names" `Quick test_window_unknown_names;
        ] );
    ]
