(* Self-stabilization tests: the two defining properties (convergence
   from arbitrary/corrupted state, closure on valid state), composition
   with the reliable layer under loss, the asynchronous engine, and
   trace-replay verification of reconvergence. *)

open Fdlsp_graph
open Fdlsp_color
open Fdlsp_sim
open Fdlsp_core

let dfs_schedule g = (Dfs_sched.run g).Dfs_sched.schedule

let check_valid what sched =
  match Schedule.validate sched with
  | Ok () -> ()
  | Error v ->
      Alcotest.failf "%s: %s" what
        (Format.asprintf "%a" (Schedule.pp_violation (Schedule.graph sched)) v)

(* ------------------------------------------------------------------ *)
(* Blip plumbing                                                       *)
(* ------------------------------------------------------------------ *)

let test_scatter_blips () =
  let a = Fault.scatter_blips ~seed:7 ~n:10 ~count:5 ~horizon:6 () in
  let b = Fault.scatter_blips ~seed:7 ~n:10 ~count:5 ~horizon:6 () in
  Alcotest.(check bool) "deterministic" true (a = b);
  Alcotest.(check int) "count" 5 (List.length a);
  List.iter
    (fun bl ->
      Alcotest.(check bool) "node in range" true (bl.Fault.b_node >= 0 && bl.Fault.b_node < 10);
      Alcotest.(check bool) "time in horizon" true (bl.Fault.b_at >= 1. && bl.Fault.b_at <= 6.))
    a;
  let c = Fault.scatter_blips ~seed:8 ~n:10 ~count:5 ~horizon:6 () in
  Alcotest.(check bool) "seed matters" true (a <> c);
  Alcotest.check_raises "empty network"
    (Invalid_argument "Fault.scatter_blips: empty network") (fun () ->
      ignore (Fault.scatter_blips ~n:0 ~count:1 ~horizon:3 ()))

let test_plan_with_blips () =
  let blips =
    [
      { Fault.b_node = 3; b_at = 5.; b_kind = Fault.Flip_slot };
      { Fault.b_node = 1; b_at = 2.; b_kind = Fault.Scramble_view };
    ]
  in
  let plan = Fault.make ~blips () in
  Alcotest.(check bool) "blip-only plan is not none" false (Fault.is_none plan);
  Alcotest.(check bool) "blip-only plan is lossless" true (Fault.lossless plan);
  Alcotest.(check bool) "lossy plan is not lossless" false
    (Fault.lossless (Fault.uniform 0.2));
  (match Fault.blips plan with
  | [ a; b ] ->
      Alcotest.(check int) "sorted by time: first" 1 a.Fault.b_node;
      Alcotest.(check int) "sorted by time: second" 3 b.Fault.b_node
  | _ -> Alcotest.fail "expected two blips");
  Alcotest.check_raises "negative blip time"
    (Invalid_argument "Fault: blip before time 0") (fun () ->
      ignore (Fault.make ~blips:[ { Fault.b_node = 0; b_at = -1.; b_kind = Fault.Flip_slot } ] ()))

let test_sync_counts_blips_without_hook () =
  (* engines count applied blips in Stats.corruptions even when the
     protocol installs no hook *)
  let g = Gen.cycle 4 in
  let blips = [ { Fault.b_node = 2; b_at = 2.; b_kind = Fault.Flip_slot } ] in
  let step ~round v st _ =
    if round >= 3 then (st, Sync.Halt [])
    else (st, Sync.Continue (Graph.fold_neighbors g v (fun acc w -> (w, ()) :: acc) []))
  in
  let _, stats = Sync.run ~faults:(Fault.make ~blips ()) g ~init:(fun _ -> ((), true)) ~step in
  Alcotest.(check int) "corruptions counted" 1 stats.Stats.corruptions

(* ------------------------------------------------------------------ *)
(* Closure                                                             *)
(* ------------------------------------------------------------------ *)

let test_closure_unit () =
  let g = fst (Gen.udg (Random.State.make [| 11 |]) ~n:25 ~side:5. ~radius:1.5) in
  let sched = dfs_schedule g in
  check_valid "initial schedule" sched;
  let r = Stabilize.run ~rounds:8 g sched in
  Alcotest.(check bool) "converged" true r.Stabilize.converged;
  Alcotest.(check int) "zero recolorings" 0 r.Stabilize.recolorings;
  Alcotest.(check int) "zero detects" 0 r.Stabilize.detects;
  Alcotest.(check int) "zero corruptions" 0 r.Stabilize.corruptions;
  Alcotest.(check int) "heartbeats only" (7 * 2 * Graph.m g) r.Stabilize.stats.Stats.messages;
  Alcotest.(check int) "no slot drift" r.Stabilize.initial_slots r.Stabilize.final_slots

let prop_closure =
  Generators.qtest "closure: valid schedule, no faults => zero recolorings" ~count:30
    (Generators.arb_gnp ~min_n:2 ~max_n:14 ~max_p:0.6 ())
    (fun g ->
      let r = Stabilize.run ~rounds:6 g (dfs_schedule g) in
      r.Stabilize.converged
      && r.Stabilize.recolorings = 0
      && r.Stabilize.stats.Stats.messages = 5 * 2 * Graph.m g)

(* ------------------------------------------------------------------ *)
(* Convergence                                                         *)
(* ------------------------------------------------------------------ *)

let test_convergence_unit () =
  let g = fst (Gen.udg (Random.State.make [| 23 |]) ~n:30 ~side:5. ~radius:1.5) in
  let sched = dfs_schedule g in
  let blips = Fault.scatter_blips ~seed:5 ~n:(Graph.n g) ~count:12 ~horizon:8 () in
  let faults = Fault.make ~seed:5 ~blips () in
  let r = Stabilize.run ~faults g sched in
  Alcotest.(check int) "all blips applied" 12 r.Stabilize.corruptions;
  Alcotest.(check bool) "converged" true r.Stabilize.converged;
  check_valid "final schedule" r.Stabilize.schedule;
  Alcotest.(check bool) "repairs happened" true (r.Stabilize.recolorings > 0);
  Alcotest.(check bool) "stabilized within horizon" true
    (r.Stabilize.last_repair_round <= r.Stabilize.rounds)

let test_determinism () =
  let g = Gen.gnp (Random.State.make [| 3 |]) ~n:20 ~p:0.25 in
  let sched = dfs_schedule g in
  let faults =
    Fault.make ~seed:9 ~blips:(Fault.scatter_blips ~seed:9 ~n:20 ~count:8 ~horizon:6 ()) ()
  in
  let a = Stabilize.run ~faults g sched in
  let b = Stabilize.run ~faults g sched in
  Alcotest.(check bool) "identical stats" true (a.Stabilize.stats = b.Stabilize.stats);
  Alcotest.(check int) "identical recolorings" a.Stabilize.recolorings b.Stabilize.recolorings;
  Alcotest.(check bool) "identical schedules" true
    (Schedule.colors a.Stabilize.schedule = Schedule.colors b.Stabilize.schedule)

let prop_convergence_from_blips =
  Generators.qtest "convergence: seeded corruption plans restabilize" ~count:30
    QCheck2.Gen.(pair (Generators.arb_gnp ~min_n:2 ~max_n:12 ~max_p:0.5 ()) (int_bound 9999))
    (fun (g, seed) ->
      let n = Graph.n g in
      let blips = Fault.scatter_blips ~seed ~n ~count:(1 + (n / 2)) ~horizon:8 () in
      let faults = Fault.make ~seed ~blips () in
      let r = Stabilize.run ~faults g (dfs_schedule g) in
      r.Stabilize.converged && Schedule.valid r.Stabilize.schedule)

let prop_convergence_from_arbitrary =
  Generators.qtest "convergence: arbitrary initial colorings restabilize" ~count:30
    QCheck2.Gen.(pair (Generators.arb_gnp ~min_n:1 ~max_n:12 ~max_p:0.5 ()) (int_bound 9999))
    (fun (g, seed) ->
      let rng = Random.State.make [| 0xA5; seed |] in
      let colors =
        Array.init (Arc.count g) (fun _ ->
            if Random.State.bool rng then -1 else Random.State.int rng 4)
      in
      let sched0 = Schedule.of_colors g colors in
      let r = Stabilize.run ~rounds:40 g sched0 in
      r.Stabilize.converged)

let prop_convergence_udg =
  Generators.qtest "convergence: UDG graphs restabilize" ~count:15 (Generators.arb_udg ())
    (fun g ->
      let n = Graph.n g in
      let blips = Fault.scatter_blips ~seed:n ~n ~count:(1 + (n / 3)) ~horizon:6 () in
      let faults = Fault.make ~seed:n ~blips () in
      (Stabilize.run ~faults g (dfs_schedule g)).Stabilize.converged)

(* ------------------------------------------------------------------ *)
(* Composition: reliable layer, crashes, asynchronous engine           *)
(* ------------------------------------------------------------------ *)

let test_converges_under_loss () =
  let g = fst (Gen.udg (Random.State.make [| 31 |]) ~n:20 ~side:4. ~radius:1.5) in
  let sched = dfs_schedule g in
  List.iter
    (fun drop ->
      let blips = Fault.scatter_blips ~seed:13 ~n:(Graph.n g) ~count:8 ~horizon:10 () in
      let faults =
        Fault.make ~seed:13 ~default_link:(Fault.lossy drop) ~blips ()
      in
      let r = Stabilize.run ~faults ~rounds:30 g sched in
      Alcotest.(check bool)
        (Printf.sprintf "converged at %g%% loss" (100. *. drop))
        true r.Stabilize.converged;
      Alcotest.(check bool)
        (Printf.sprintf "loss actually injected at %g" drop)
        true
        (r.Stabilize.stats.Stats.dropped > 0);
      Alcotest.(check bool)
        (Printf.sprintf "retransmissions at %g" drop)
        true
        (r.Stabilize.stats.Stats.retransmits > 0);
      Alcotest.(check bool)
        (Printf.sprintf "blips fired at %g" drop)
        true
        (r.Stabilize.corruptions > 0))
    [ 0.1; 0.3 ]

let test_converges_on_lockstep_engine () =
  let g = Gen.gnp (Random.State.make [| 41 |]) ~n:16 ~p:0.3 in
  let sched = dfs_schedule g in
  let blips = Fault.scatter_blips ~seed:21 ~n:16 ~count:6 ~horizon:6 () in
  let faults = Fault.make ~seed:21 ~blips () in
  let engine = Lockstep.runner ~blips () in
  let r = Stabilize.run ~faults ~engine g sched in
  Alcotest.(check bool) "converged on async engine" true r.Stabilize.converged;
  Alcotest.(check int) "all blips applied" 6 r.Stabilize.corruptions;
  check_valid "final schedule" r.Stabilize.schedule

(* ------------------------------------------------------------------ *)
(* Traces and replay                                                   *)
(* ------------------------------------------------------------------ *)

let run_traced ?(count = 10) ?(drop = 0.) seed g =
  let sched = dfs_schedule g in
  let blips = Fault.scatter_blips ~seed ~n:(Graph.n g) ~count ~horizon:8 () in
  let faults =
    Fault.make ~seed
      ~default_link:(if drop > 0. then Fault.lossy drop else Fault.perfect)
      ~blips ()
  in
  let sink = Trace.memory () in
  let r = Stabilize.run ~faults ~rounds:30 ~trace:sink g sched in
  (r, faults, Trace.events sink)

let test_trace_replay_verifies_reconvergence () =
  let g = fst (Gen.udg (Random.State.make [| 53 |]) ~n:20 ~side:4. ~radius:1.5) in
  let r, plan, evs = run_traced 17 g in
  Alcotest.(check bool) "run converged" true r.Stabilize.converged;
  match Trace.Replay.check_stabilize ~plan g evs with
  | Error m -> Alcotest.failf "replay rejected a genuine trace: %s" m
  | Ok rep ->
      Alcotest.(check bool) "replay converged" true rep.Trace.Replay.s_converged;
      Alcotest.(check int) "corruption events match" r.Stabilize.corruptions
        rep.Trace.Replay.s_corruptions;
      Alcotest.(check int) "recolorings match" r.Stabilize.recolorings
        rep.Trace.Replay.s_recolorings;
      Alcotest.(check int) "locality matches" r.Stabilize.recolored_arcs
        rep.Trace.Replay.s_recolored_arcs;
      Alcotest.(check bool) "rebuilt schedule matches"
        true
        (Schedule.colors rep.Trace.Replay.s_schedule
        = Schedule.colors r.Stabilize.schedule);
      Alcotest.(check bool) "counted rounds to stabilize" true
        (rep.Trace.Replay.s_rounds_to_stabilize >= 1);
      Alcotest.(check int) "lag agrees with the live report"
        r.Stabilize.rounds_to_stabilize rep.Trace.Replay.s_rounds_to_stabilize

let test_trace_replay_rejects_tampering () =
  let g = Gen.gnp (Random.State.make [| 67 |]) ~n:12 ~p:0.35 in
  let _, plan, evs = run_traced 29 g in
  (* recolor attributed to a node that does not own the arc *)
  let tampered =
    Array.map
      (fun ({ Trace.t; ev } as e) ->
        match ev with
        | Trace.Recolor { node; arc; slot } ->
            { Trace.t; ev = Trace.Recolor { node = (node + 1) mod Graph.n g; arc; slot } }
        | _ -> e)
      evs
  in
  let had_recolor = tampered <> evs in
  if had_recolor then
    (match Trace.Replay.check_stabilize ~plan g tampered with
    | Ok _ -> Alcotest.fail "replay accepted a non-owner recoloring"
    | Error _ -> ());
  (* corruption event that matches no planned blip *)
  let forged =
    Array.append evs
      [| { Trace.t = 999.; ev = Trace.Corrupt_state { node = 0; arc = -1; slot = -1 } } |]
  in
  match Trace.Replay.check_stabilize ~plan g forged with
  | Ok _ -> Alcotest.fail "replay accepted an unplanned corruption"
  | Error _ -> ()

let test_trace_replay_lossy_roundtrip () =
  (* record under loss, write to a file, load it back, verify *)
  let g = fst (Gen.udg (Random.State.make [| 71 |]) ~n:15 ~side:4. ~radius:1.6) in
  let r, plan, evs = run_traced ~drop:0.15 43 g in
  Alcotest.(check bool) "run converged" true r.Stabilize.converged;
  let path = Filename.temp_file "fdlsp_stab" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save ~meta:[ ("algo", "stabilize") ] ~stats:r.Stabilize.stats path evs;
      let file = Trace.load path in
      Alcotest.(check int) "events survive the round-trip" (Array.length evs)
        (Array.length file.Trace.events);
      (match file.Trace.stats with
      | Some s -> Alcotest.(check int) "corruptions survive" r.Stabilize.corruptions s.Stats.corruptions
      | None -> Alcotest.fail "missing stats trailer");
      match Trace.Replay.check_stabilize ~plan g file.Trace.events with
      | Error m -> Alcotest.failf "replay rejected the loaded trace: %s" m
      | Ok rep -> Alcotest.(check bool) "loaded trace converged" true rep.Trace.Replay.s_converged)

let () =
  Alcotest.run "stabilize"
    [
      ( "blips",
        [
          Alcotest.test_case "scatter_blips" `Quick test_scatter_blips;
          Alcotest.test_case "plan with blips" `Quick test_plan_with_blips;
          Alcotest.test_case "counted without hook" `Quick
            test_sync_counts_blips_without_hook;
        ] );
      ( "closure",
        [
          Alcotest.test_case "valid schedule stays put" `Quick test_closure_unit;
          prop_closure;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "corruption plan restabilizes" `Quick test_convergence_unit;
          Alcotest.test_case "determinism" `Quick test_determinism;
          prop_convergence_from_blips;
          prop_convergence_from_arbitrary;
          prop_convergence_udg;
        ] );
      ( "composition",
        [
          Alcotest.test_case "converges at 10% and 30% loss" `Quick
            test_converges_under_loss;
          Alcotest.test_case "converges on the async engine" `Quick
            test_converges_on_lockstep_engine;
        ] );
      ( "replay",
        [
          Alcotest.test_case "verifies reconvergence" `Quick
            test_trace_replay_verifies_reconvergence;
          Alcotest.test_case "rejects tampering" `Quick test_trace_replay_rejects_tampering;
          Alcotest.test_case "lossy record/load round-trip" `Quick
            test_trace_replay_lossy_roundtrip;
        ] );
    ]
