(* Tests for the event-tracing subsystem: sinks, the JSONL codec and
   file format, per-phase summaries, and the replay checker that
   re-validates a finished run from its trace alone. *)

open Fdlsp_graph
open Fdlsp_sim
open Fdlsp_core

let rng = Generators.rng [| 0x7ACE; 4 |]
let qtest name ?(count = 50) arb prop = Generators.qtest name ~count arb prop

let ev t e = { Trace.t; ev = e }

let sample_events =
  [|
    ev 1. (Trace.Round_start 1);
    ev 1. (Trace.Send { src = 0; dst = 1 });
    ev 1. (Trace.Recv { src = 0; dst = 1 });
    ev 1. (Trace.Drop { src = 1; dst = 2 });
    ev 1. (Trace.Duplicate { src = 2; dst = 0 });
    ev 1. (Trace.Retransmit { src = 0; dst = 2 });
    ev 1.5 (Trace.Crash 3);
    ev 2.25 (Trace.Recover 3);
    ev 1. (Trace.Round_end 1);
    ev 0. (Trace.Phase { label = "color \"x\"\n"; scale = 3 });
    ev 2. (Trace.Mis_join 5);
    ev 2. (Trace.Color { node = 4; arc = 7; slot = 2 });
    ev 3. (Trace.Corrupt_state { node = 2; arc = 5; slot = 9 });
    ev 3. (Trace.Corrupt_state { node = 1; arc = -1; slot = -1 });
    ev 4. (Trace.Detect { node = 2; arc = 5 });
    ev 4. (Trace.Recolor { node = 2; arc = 5; slot = 1 });
    ev 5. (Trace.Give_up { src = 0; dst = 2 });
    ev 6. (Trace.Beacon_loss { node = 3; frame = 7 });
    ev 6.5 (Trace.Desync { node = 3; frame = 9 });
    ev 7. (Trace.Join { node = 3; parent = 1 });
    ev 7. (Trace.Resync { node = 3; frame = 10 });
    ev 7.25 (Trace.Sleep { node = 3; slots = 4 });
  |]

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let test_null_sink () =
  let s = Trace.null in
  Alcotest.(check bool) "disabled" false (Trace.enabled s);
  Trace.emit s ~t:1. (Trace.Round_start 1);
  Alcotest.(check int) "seen" 0 (Trace.seen s);
  Alcotest.(check int) "events" 0 (Array.length (Trace.events s));
  Alcotest.(check int) "overwritten" 0 (Trace.overwritten s)

let test_memory_sink () =
  let s = Trace.memory () in
  Alcotest.(check bool) "enabled" true (Trace.enabled s);
  Array.iter (fun { Trace.t; ev } -> Trace.emit s ~t ev) sample_events;
  Alcotest.(check int) "seen" (Array.length sample_events) (Trace.seen s);
  Alcotest.(check int) "overwritten" 0 (Trace.overwritten s);
  Alcotest.(check bool) "order preserved" true (Trace.events s = sample_events)

let test_ring_wraparound () =
  let s = Trace.memory ~capacity:4 () in
  for i = 1 to 10 do
    Trace.emit s ~t:(float_of_int i) (Trace.Round_start i)
  done;
  Alcotest.(check int) "seen counts everything" 10 (Trace.seen s);
  Alcotest.(check int) "overwritten" 6 (Trace.overwritten s);
  let kept = Trace.events s in
  Alcotest.(check int) "capacity" 4 (Array.length kept);
  Alcotest.(check bool) "last four, in order" true
    (Array.to_list kept
    = List.map (fun i -> ev (float_of_int i) (Trace.Round_start i)) [ 7; 8; 9; 10 ])

(* ------------------------------------------------------------------ *)
(* JSONL codec and trace files                                         *)
(* ------------------------------------------------------------------ *)

let test_event_json_roundtrip () =
  Array.iter
    (fun e ->
      let e' = Trace.event_of_json (Trace.event_to_json e) in
      Alcotest.(check bool) (Trace.event_to_json e) true (e = e'))
    sample_events

let test_event_json_rejects () =
  let fails s = try ignore (Trace.event_of_json s); false with Failure _ -> true in
  Alcotest.(check bool) "garbage" true (fails "nope");
  Alcotest.(check bool) "unknown event" true (fails {|{"t":1,"ev":"warp"}|});
  Alcotest.(check bool) "missing fields" true (fails {|{"t":1,"ev":"send","src":0}|})

let test_json_reader () =
  let j = Trace.Json.parse {| {"a": -1.5e2, "b": "x\"\n", "c": {"d": true}, "e": null} |} in
  Alcotest.(check bool) "num" true (Trace.Json.member "a" j = Some (Trace.Json.Num (-150.)));
  Alcotest.(check bool) "escaped string" true
    (Trace.Json.member "b" j = Some (Trace.Json.Str "x\"\n"));
  Alcotest.(check bool) "nested" true
    (match Trace.Json.member "c" j with
    | Some o -> Trace.Json.member "d" o = Some (Trace.Json.Bool true)
    | None -> false);
  Alcotest.(check bool) "null" true (Trace.Json.member "e" j = Some Trace.Json.Null);
  Alcotest.(check bool) "absent" true (Trace.Json.member "zz" j = None);
  let fails s = try ignore (Trace.Json.parse s); false with Failure _ -> true in
  Alcotest.(check bool) "trailing junk" true (fails "{} x");
  Alcotest.(check bool) "unterminated" true (fails {|{"a": 1|})

let test_file_roundtrip () =
  let path = Filename.temp_file "fdlsp" ".jsonl" in
  let stats = Stats.make ~rounds:3 ~messages:9 ~dropped:1 () in
  Trace.save ~meta:[ ("algo", "unit-test"); ("n", "5") ] ~stats path sample_events;
  let f = Trace.load path in
  Sys.remove path;
  Alcotest.(check bool) "meta" true
    (List.assoc "algo" f.Trace.meta = "unit-test" && List.assoc "n" f.Trace.meta = "5");
  Alcotest.(check bool) "stats" true (f.Trace.stats = Some stats);
  Alcotest.(check bool) "events" true (f.Trace.events = sample_events)

let test_load_errors () =
  let with_contents s k =
    let path = Filename.temp_file "fdlsp" ".jsonl" in
    let oc = open_out path in
    output_string oc s;
    close_out oc;
    let r = try ignore (Trace.load path); false with Failure _ -> true in
    Sys.remove path;
    k r
  in
  with_contents "" (Alcotest.(check bool) "empty file" true);
  with_contents "{\"trace\":\"fdlsp\",\"version\":1,\"meta\":{}}\n"
    (Alcotest.(check bool) "missing trailer" true);
  with_contents
    "{\"trace\":\"fdlsp\",\"version\":1,\"meta\":{}}\n{\"end\":true}\n{\"end\":true}\n"
    (Alcotest.(check bool) "content after trailer" true)

(* ------------------------------------------------------------------ *)
(* Summaries and Stats JSON                                            *)
(* ------------------------------------------------------------------ *)

let test_summary_phases () =
  let stream =
    [|
      ev 1. (Trace.Round_start 1);
      ev 1. (Trace.Send { src = 0; dst = 1 });
      ev 1. (Trace.Recv { src = 0; dst = 1 });
      ev 1. (Trace.Round_end 1);
      ev 0. (Trace.Phase { label = "relay"; scale = 3 });
      ev 1. (Trace.Round_start 1);
      ev 1. (Trace.Send { src = 1; dst = 0 });
      ev 1. (Trace.Drop { src = 1; dst = 0 });
      ev 1. (Trace.Round_end 1);
      ev 2. (Trace.Round_start 2);
      ev 2. (Trace.Mis_join 0);
      ev 2. (Trace.Round_end 2);
    |]
  in
  let s = Trace.Summary.of_events stream in
  (match s.Trace.Summary.phases with
  | [ a; b ] ->
      Alcotest.(check string) "implicit label" "run" a.Trace.Summary.label;
      Alcotest.(check int) "run rounds" 1 a.Trace.Summary.rounds;
      Alcotest.(check int) "run sends" 1 a.Trace.Summary.sends;
      Alcotest.(check string) "second label" "relay" b.Trace.Summary.label;
      Alcotest.(check int) "relay scale" 3 b.Trace.Summary.scale;
      Alcotest.(check int) "relay rounds" 2 b.Trace.Summary.rounds;
      Alcotest.(check int) "relay joins" 1 b.Trace.Summary.mis_joins
  | ps -> Alcotest.failf "expected 2 phases, got %d" (List.length ps));
  let tot = Trace.Summary.totals s in
  (* scale weights channel activity but not decisions *)
  Alcotest.(check int) "total rounds" (1 + (3 * 2)) tot.Trace.Summary.rounds;
  Alcotest.(check int) "total sends" (1 + (3 * 1)) tot.Trace.Summary.sends;
  Alcotest.(check int) "total drops" 3 tot.Trace.Summary.drops;
  Alcotest.(check int) "total joins" 1 tot.Trace.Summary.mis_joins

(* Satellite: Stats.to_json must parse as JSON and agree field-for-field
   with the stable pp_kv rendering. *)
let arb_stats =
  let gen st =
    Stats.make
      ~volume:(Random.State.int st 10_000)
      ~dropped:(Random.State.int st 500)
      ~duplicated:(Random.State.int st 500)
      ~retransmits:(Random.State.int st 500)
      ~gave_up:(Random.State.int st 100)
      ~rounds:(Random.State.int st 1000)
      ~messages:(Random.State.int st 10_000)
      ~corruptions:(Random.State.int st 100)
      ()
  in
  QCheck2.Gen.make_primitive ~gen ~shrink:(fun _ -> Seq.empty)

let prop_stats_json_matches_kv =
  qtest "Stats.to_json parses and reconciles with pp_kv" ~count:100 arb_stats
    (fun st ->
      let j = Trace.Json.parse (Stats.to_json st) in
      let kv =
        Format.asprintf "%a" Stats.pp_kv st
        |> String.split_on_char ' '
        |> List.map (fun pair ->
               match String.split_on_char '=' pair with
               | [ k; v ] -> (k, float_of_string v)
               | _ -> failwith "bad kv pair")
      in
      List.length kv = 8
      && List.for_all
           (fun (k, v) -> Trace.Json.member k j = Some (Trace.Json.Num v))
           kv)

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let traced_distmis ?(drop = 0.1) ?crashes () =
  let g = fst (Gen.udg (rng ()) ~n:14 ~side:4. ~radius:1.4) in
  let plan =
    match crashes with
    | None -> Fault.uniform ~seed:11 drop
    | Some crashes ->
        Fault.make ~seed:11 ~default_link:(Fault.lossy drop) ~crashes ()
  in
  let trace = Trace.memory () in
  let r =
    Dist_mis.run ~faults:plan ~trace
      ~mis:(Mis.Luby (Random.State.make [| 3; 14 |]))
      ~variant:Dist_mis.Gbg g
  in
  (g, plan, Trace.events trace, r)

let test_replay_ok () =
  let g, plan, events, r = traced_distmis () in
  match
    Trace.Replay.check ~plan ~stats:r.Dist_mis.stats ~require_complete:true g events
  with
  | Ok rep ->
      Alcotest.(check bool) "saw retransmissions" true
        (rep.Trace.Replay.retransmit_events > 0);
      Alcotest.(check bool) "schedule rebuilt" true
        (Fdlsp_color.Schedule.valid rep.Trace.Replay.schedule)
  | Error e -> Alcotest.failf "replay failed: %s" e

let test_replay_ok_with_crashes () =
  let crashes = [ { Fault.node = 2; at = 4.; until = Some 9. } ] in
  let g, plan, events, r = traced_distmis ~drop:0.05 ~crashes () in
  match
    Trace.Replay.check ~plan ~stats:r.Dist_mis.stats ~require_complete:true g events
  with
  | Ok rep ->
      Alcotest.(check bool) "crash events recorded" true
        (rep.Trace.Replay.crash_events > 0)
  | Error e -> Alcotest.failf "replay failed: %s" e

let test_replay_rejects_tampered_decision () =
  let g, plan, events, r = traced_distmis () in
  (* re-coloring an already-colored arc must be caught *)
  let recolor =
    Array.to_seq events
    |> Seq.filter_map (function
         | { Trace.ev = Trace.Color c; t } ->
             Some { Trace.t; ev = Trace.Color { c with slot = c.slot + 1 } }
         | _ -> None)
    |> Seq.take 1 |> Array.of_seq
  in
  let tampered = Array.append events recolor in
  match Trace.Replay.check ~plan ~stats:r.Dist_mis.stats g tampered with
  | Ok _ -> Alcotest.fail "tampered trace accepted"
  | Error _ -> ()

let test_replay_rejects_stats_mismatch () =
  let g, plan, events, r = traced_distmis () in
  let st = r.Dist_mis.stats in
  let lying = { st with Stats.messages = st.Stats.messages + 1 } in
  match Trace.Replay.check ~plan ~stats:lying g events with
  | Ok _ -> Alcotest.fail "bad stats accepted"
  | Error _ -> ()

let test_replay_rejects_conflicting_colors () =
  (* hand-built trace on a path: both arcs of one edge in the same slot *)
  let g = Gen.path 2 in
  let a = Arc.make g 0 1 in
  let stream =
    [|
      ev 1. (Trace.Color { node = 0; arc = a; slot = 0 });
      ev 1. (Trace.Color { node = 1; arc = Arc.rev a; slot = 0 });
    |]
  in
  match Trace.Replay.check g stream with
  | Ok _ -> Alcotest.fail "conflicting decisions accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Tracing must not perturb the run                                    *)
(* ------------------------------------------------------------------ *)

let prop_tracing_is_transparent =
  qtest "traced run = untraced run (DFS, schedule and stats)" ~count:20
    (Generators.arb_gnp ~max_n:12 ~max_p:0.5 ())
    (fun g ->
      let plain = Dfs_sched.run g in
      let trace = Trace.memory () in
      let traced = Dfs_sched.run ~trace g in
      Fdlsp_color.Schedule.colors plain.Dfs_sched.schedule
      = Fdlsp_color.Schedule.colors traced.Dfs_sched.schedule
      && plain.Dfs_sched.stats = traced.Dfs_sched.stats)

let prop_dfs_replay =
  qtest "DFS traces replay clean" ~count:20
    (Generators.arb_gnp ~min_n:2 ~max_n:10 ~max_p:0.5 ())
    (fun g ->
      let trace = Trace.memory () in
      let r = Dfs_sched.run ~trace g in
      match
        Trace.Replay.check ~stats:r.Dfs_sched.stats ~require_complete:true g
          (Trace.events trace)
      with
      | Ok _ -> true
      | Error _ -> false)

let () =
  Alcotest.run "fdlsp_trace"
    [
      ( "sinks",
        [
          Alcotest.test_case "null" `Quick test_null_sink;
          Alcotest.test_case "memory" `Quick test_memory_sink;
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "event roundtrip" `Quick test_event_json_roundtrip;
          Alcotest.test_case "event rejects" `Quick test_event_json_rejects;
          Alcotest.test_case "json reader" `Quick test_json_reader;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "load errors" `Quick test_load_errors;
        ] );
      ( "summary",
        [
          Alcotest.test_case "phase split + totals" `Quick test_summary_phases;
          prop_stats_json_matches_kv;
        ] );
      ( "replay",
        [
          Alcotest.test_case "distmis under loss" `Quick test_replay_ok;
          Alcotest.test_case "distmis with crashes" `Quick test_replay_ok_with_crashes;
          Alcotest.test_case "tampered decision" `Quick test_replay_rejects_tampered_decision;
          Alcotest.test_case "stats mismatch" `Quick test_replay_rejects_stats_mismatch;
          Alcotest.test_case "conflicting colors" `Quick test_replay_rejects_conflicting_colors;
          prop_tracing_is_transparent;
          prop_dfs_replay;
        ] );
    ]
